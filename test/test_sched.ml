(* Tests for the deterministic schedule explorer (DESIGN.md §14):

   - replay determinism: a recorded schedule, replayed through the
     Fixed strategy, reproduces the identical decision sequence and
     history hash — including through a save/load round-trip and with
     chaos fault injection active during the run;
   - chaos statelessness: draws are pure functions of
     (seed, tid, site, step), so interleaving other sites between two
     draws at one site cannot perturb them;
   - shrinking: ddmin converges to the minimal witness on a synthetic
     oracle and never returns an unconfirmed candidate;
   - PCT semantics: depth-0 PCT is strict priority scheduling (each
     worker runs to completion before the next starts);
   - regression corpus: every committed trace in test/schedules/
     deterministically reproduces its recorded failure class against
     the seeded TinySTM bug it was found on, and passes cleanly once
     the bug is disabled. *)

module Chaos = Twoplsf_chaos.Chaos
module Sched = Twoplsf_sched.Sched
module Scenario = Twoplsf_sched.Scenario
module Trace = Twoplsf_sched.Trace
module Shrink = Twoplsf_sched.Shrink
module Explore = Twoplsf_sched.Explore

let check = Alcotest.check

let scenario =
  {
    Trace.default_scenario with
    Trace.stm = "TinySTM";
    threads = 3;
    accounts = 4;
    txns_per_thread = 5;
    abort_every = 3;
    audit_every = 4;
  }

let run_random seed =
  Scenario.run ~strategy:(Sched.Random_walk { seed }) scenario

let replay ?chaos (t : Trace.t) =
  Scenario.run ?chaos
    ~strategy:(Sched.Fixed { decisions = t.Trace.decisions })
    t.Trace.scenario

(* ---- replay determinism ------------------------------------------- *)

let test_replay_determinism () =
  let o = run_random 42 in
  check (Alcotest.option Alcotest.string) "clean scenario" None
    (Option.map Scenario.failure_class o.Scenario.failure);
  let t =
    {
      Trace.version = Trace.version;
      strategy = "random seed=42";
      failure = None;
      scenario;
      decisions = o.Scenario.info.Sched.decisions;
    }
  in
  (* Round-trip through the on-disk format: replays must not depend on
     anything the serialization drops. *)
  let file = Filename.temp_file "sched" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace.save file t;
      let t' = Trace.load file in
      check Alcotest.int "decision count survives round-trip"
        (Array.length t.Trace.decisions)
        (Array.length t'.Trace.decisions);
      let r1 = replay t' and r2 = replay t' in
      check Alcotest.int "identical history hashes" r1.Scenario.history_hash
        r2.Scenario.history_hash;
      check Alcotest.bool "identical decision sequences" true
        (r1.Scenario.info.Sched.decisions = r2.Scenario.info.Sched.decisions);
      check Alcotest.int "replay matches recording" o.Scenario.history_hash
        r1.Scenario.history_hash;
      check Alcotest.int "no divergence on faithful replay" 0
        r1.Scenario.info.Sched.divergences)

let test_replay_determinism_with_chaos () =
  (* Active fault injection (delays, spurious restarts) must not break
     replay: draws are stateless in (seed, tid, site, step), and the
     schedule pins every step. *)
  let chaos =
    { Chaos.quiet with Chaos.seed = 7; delay_ppm = 20_000; spurious_ppm = 5_000 }
  in
  let o = Scenario.run ~chaos ~strategy:(Sched.Random_walk { seed = 9 }) scenario in
  let t =
    {
      Trace.version = Trace.version;
      strategy = "random seed=9 chaos";
      failure = Option.map Scenario.failure_class o.Scenario.failure;
      scenario;
      decisions = o.Scenario.info.Sched.decisions;
    }
  in
  let r1 = replay ~chaos t and r2 = replay ~chaos t in
  check Alcotest.int "chaos-active replay is bit-stable"
    r1.Scenario.history_hash r2.Scenario.history_hash;
  check Alcotest.int "chaos-active replay matches recording"
    o.Scenario.history_hash r1.Scenario.history_hash

(* ---- chaos draw statelessness ------------------------------------- *)

let test_chaos_step_purity () =
  (* Two enable/disable cycles with the same seed must yield the same
     per-(tid, site) decision streams regardless of what other sites
     fire in between: draws are keyed by (seed, tid, site, step), not
     by a shared RNG. *)
  let probe interleave =
    Chaos.enable ~config:{ Chaos.quiet with Chaos.seed = 13; spurious_ppm = 400_000 } ();
    let out =
      List.init 32 (fun _ ->
          if interleave then Chaos.point Chaos.Txn_body;
          Chaos.spurious Chaos.Write_lock_acquire)
    in
    Chaos.disable ();
    out
  in
  let a = probe false and b = probe true in
  check (Alcotest.list Alcotest.bool)
    "per-site stream unaffected by interleaved sites" a b

(* ---- shrinking ---------------------------------------------------- *)

let test_shrink_converges () =
  (* Synthetic oracle: fails iff the sequence keeps >= 3 marked
     elements.  ddmin must strip all 97 unmarked ones. *)
  let marked = (1, 5) in
  let input =
    Array.init 100 (fun i ->
        if i = 20 || i = 55 || i = 90 then marked else (0, i mod 7))
  in
  let trials = ref 0 in
  let oracle d =
    incr trials;
    Array.fold_left (fun n x -> if x = marked then n + 1 else n) 0 d >= 3
  in
  let out, stats = Shrink.shrink ~oracle input in
  check Alcotest.int "minimal witness" 3 (Array.length out);
  check Alcotest.bool "result still fails" true (oracle out);
  check Alcotest.int "from_len recorded" 100 stats.Shrink.from_len;
  check Alcotest.int "to_len recorded" 3 stats.Shrink.to_len;
  check Alcotest.bool "trial budget respected" true (stats.Shrink.trials <= 400)

let test_shrink_respects_budget () =
  let input = Array.init 64 (fun i -> (i mod 2, i mod 7)) in
  let oracle _ = true in
  let _, stats = Shrink.shrink ~oracle ~max_trials:10 input in
  check Alcotest.bool "stops at max_trials" true (stats.Shrink.trials <= 10)

(* ---- PCT semantics ------------------------------------------------ *)

let test_pct_depth0_is_strict_priority () =
  (* With no change points and a conflict-free workload (each worker
     only ever sees its peers parked, so nothing blocks), strict
     priority runs each worker to completion: the decision log is at
     most [threads] maximal runs of a single slot. *)
  let s =
    { scenario with Trace.stm = "2PLSF"; abort_every = 0; audit_every = 0 }
  in
  let o =
    Scenario.run
      ~strategy:(Sched.Pct { seed = 5; depth = 0; horizon = 512 })
      s
  in
  check (Alcotest.option Alcotest.string) "clean run" None
    (Option.map Scenario.failure_class o.Scenario.failure);
  let runs =
    Array.fold_left
      (fun (n, prev) (slot, _) -> if slot = prev then (n, prev) else (n + 1, slot))
      (0, -1) o.Scenario.info.Sched.decisions
    |> fst
  in
  check Alcotest.bool
    (Printf.sprintf "at most %d priority runs (got %d)" s.Trace.threads runs)
    true
    (runs <= s.Trace.threads);
  (* Same seed, same schedule. *)
  let o2 =
    Scenario.run
      ~strategy:(Sched.Pct { seed = 5; depth = 0; horizon = 512 })
      s
  in
  check Alcotest.int "PCT is deterministic per seed" o.Scenario.history_hash
    o2.Scenario.history_hash

(* ---- regression corpus -------------------------------------------- *)

let corpus () =
  (* dune runtest runs us in the build test dir (deps copied alongside);
     dune exec runs from the project root. *)
  let dir =
    if Sys.file_exists "schedules" then "schedules" else "test/schedules"
  in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare
  |> List.map (fun f -> Filename.concat dir f)

let test_corpus_reproduces file () =
  let t = Trace.load file in
  let recorded =
    match t.Trace.failure with
    | Some f -> f
    | None -> Alcotest.fail (file ^ ": corpus trace has no recorded failure")
  in
  let r1 = replay t and r2 = replay t in
  check Alcotest.int (file ^ ": replay is deterministic")
    r1.Scenario.history_hash r2.Scenario.history_hash;
  match r1.Scenario.failure with
  | None -> Alcotest.fail (file ^ ": recorded failure did not reproduce")
  | Some f ->
      check Alcotest.string
        (file ^ ": failure class matches recording")
        recorded (Scenario.failure_class f)

let test_corpus_passes_when_fixed file () =
  (* The same schedule against unmodified TinySTM must be clean: the
     corpus pins the bug, not the schedule. *)
  let t = Trace.load file in
  let fixed =
    { t with Trace.scenario = { t.Trace.scenario with Trace.bug = None } }
  in
  let r = replay fixed in
  check (Alcotest.option Alcotest.string)
    (file ^ ": clean on fixed code") None
    (Option.map Scenario.failure_class r.Scenario.failure)

(* ---- explorer end-to-end ------------------------------------------ *)

let test_explore_finds_seeded_bug () =
  (* rollback-old-version manifests even under the round-robin probe,
     so one cheap iteration suffices for an end-to-end search test. *)
  let p =
    {
      Explore.default_params with
      Explore.scenario =
        {
          scenario with
          Trace.bug = Some "rollback-old-version";
          txns_per_thread = 6;
        };
      kind = Explore.Pct;
      iters = 5;
      max_shrink_trials = 60;
    }
  in
  let r = Explore.search p in
  match r.Explore.found with
  | None -> Alcotest.fail "explorer missed the seeded bug"
  | Some f ->
      check Alcotest.bool "shrunk trace no longer than original" true
        (Array.length f.Explore.trace.Trace.decisions <= f.Explore.original_len);
      (* The packaged trace must itself replay to the same failure. *)
      let rr = replay f.Explore.trace in
      check (Alcotest.option Alcotest.string) "witness replays"
        (Some (Scenario.failure_class f.Explore.failure))
        (Option.map Scenario.failure_class rr.Scenario.failure)

let () =
  ignore (Util.Tid.register ());
  let corpus_cases =
    List.concat_map
      (fun f ->
        [
          Alcotest.test_case (Filename.basename f ^ " reproduces") `Quick
            (test_corpus_reproduces f);
          Alcotest.test_case (Filename.basename f ^ " clean when fixed") `Quick
            (test_corpus_passes_when_fixed f);
        ])
      (corpus ())
  in
  Alcotest.run "sched"
    [
      ( "replay",
        [
          Alcotest.test_case "determinism + round-trip" `Quick
            test_replay_determinism;
          Alcotest.test_case "determinism under chaos" `Quick
            test_replay_determinism_with_chaos;
        ] );
      ( "chaos",
        [ Alcotest.test_case "per-site step purity" `Quick test_chaos_step_purity ] );
      ( "shrink",
        [
          Alcotest.test_case "converges to minimal witness" `Quick
            test_shrink_converges;
          Alcotest.test_case "respects trial budget" `Quick
            test_shrink_respects_budget;
        ] );
      ( "pct",
        [
          Alcotest.test_case "depth 0 is strict priority" `Quick
            test_pct_depth0_is_strict_priority;
        ] );
      ("corpus", corpus_cases);
      ( "explore",
        [
          Alcotest.test_case "finds seeded bug end-to-end" `Quick
            test_explore_finds_seeded_bug;
        ] );
    ]
