(* Unit and property tests for the util substrate: PRNG, zipfian
   generator, statistics, growable vectors, id generator, tid registry. *)

let check = Alcotest.check

(* ---- Sprng ---- *)

let test_sprng_deterministic () =
  let a = Util.Sprng.create 42 and b = Util.Sprng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Util.Sprng.next a) (Util.Sprng.next b)
  done

let test_sprng_int_range () =
  let rng = Util.Sprng.create 7 in
  for _ = 1 to 10_000 do
    let v = Util.Sprng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_sprng_float_range () =
  let rng = Util.Sprng.create 9 in
  for _ = 1 to 10_000 do
    let f = Util.Sprng.float rng in
    if f < 0. || f >= 1. then Alcotest.failf "out of range: %f" f
  done

let test_sprng_spread () =
  (* Rough uniformity: each of 8 buckets gets 5-20% of 10k draws. *)
  let rng = Util.Sprng.create 11 in
  let buckets = Array.make 8 0 in
  for _ = 1 to 10_000 do
    let v = Util.Sprng.int rng 8 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      if c < 500 || c > 2000 then Alcotest.failf "skewed bucket: %d" c)
    buckets

(* ---- Zipf ---- *)

let test_zipf_uniform_theta0 () =
  let z = Util.Zipf.create ~n:100 ~theta:0. () in
  let seen = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Util.Zipf.next z in
    if k < 0 || k >= 100 then Alcotest.failf "out of range: %d" k;
    seen.(k) <- seen.(k) + 1
  done;
  (* uniform: expect ~200 each; allow wide slack *)
  Array.iteri
    (fun i c -> if c < 50 then Alcotest.failf "key %d undersampled: %d" i c)
    seen

let test_zipf_skew () =
  let z = Util.Zipf.create ~n:1000 ~theta:0.9 () in
  let hot = ref 0 and total = 20_000 in
  for _ = 1 to total do
    if Util.Zipf.next z < 10 then incr hot
  done;
  (* With theta=0.9 the 1% hottest keys draw far more than 1% of accesses. *)
  if !hot < total / 10 then
    Alcotest.failf "zipf not skewed enough: hot=%d/%d" !hot total

let test_zipf_range () =
  List.iter
    (fun theta ->
      let z = Util.Zipf.create ~n:37 ~theta () in
      for _ = 1 to 5_000 do
        let k = Util.Zipf.next z in
        if k < 0 || k >= 37 then
          Alcotest.failf "theta %f out of range: %d" theta k
      done)
    [ 0.; 0.3; 0.6; 0.9; 0.99 ]

(* ---- Stats ---- *)

let test_stats_mean () =
  check (Alcotest.float 1e-9) "mean" 2.5 (Util.Stats.mean [| 1.; 2.; 3.; 4. |]);
  check (Alcotest.float 1e-9) "empty" 0. (Util.Stats.mean [||])

let test_stats_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check (Alcotest.float 1e-9) "p50" 50. (Util.Stats.percentile xs 50.);
  check (Alcotest.float 1e-9) "p99" 99. (Util.Stats.percentile xs 99.);
  check (Alcotest.float 1e-9) "p100" 100. (Util.Stats.percentile xs 100.)

let test_stats_percentile_unsorted () =
  let xs = [| 5.; 1.; 4.; 2.; 3. |] in
  check (Alcotest.float 1e-9) "p50 of shuffled" 3. (Util.Stats.percentile xs 50.)

let test_stats_percentiles_in_place () =
  let xs = Array.init 1000 (fun i -> float_of_int (999 - i)) in
  let ps = Util.Stats.percentiles_in_place xs [ 50.; 90.; 99. ] in
  check (Alcotest.float 1e-9) "p50" 499. (List.assoc 50. ps);
  check (Alcotest.float 1e-9) "p90" 899. (List.assoc 90. ps);
  check (Alcotest.float 1e-9) "p99" 989. (List.assoc 99. ps)

let test_stats_max () =
  check (Alcotest.float 1e-9) "max" 9. (Util.Stats.max [| 3.; 9.; 1. |]);
  check (Alcotest.float 1e-9) "all negative" (-1.)
    (Util.Stats.max [| -5.; -1.; -3. |]);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.max: empty sample")
    (fun () -> ignore (Util.Stats.max [||]))

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "constant" 0. (Util.Stats.stddev [| 3.; 3.; 3. |]);
  check (Alcotest.float 1e-6) "spread" 2.
    (Util.Stats.stddev [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

(* ---- Vec ---- *)

let test_vec_push_get () =
  let v = Util.Vec.create ~dummy:(-1) () in
  for i = 0 to 99 do
    Util.Vec.push v i
  done;
  check Alcotest.int "length" 100 (Util.Vec.length v);
  for i = 0 to 99 do
    check Alcotest.int "get" i (Util.Vec.get v i)
  done

let test_vec_clear_reuse () =
  let v = Util.Vec.create ~capacity:2 ~dummy:0 () in
  Util.Vec.push v 1;
  Util.Vec.push v 2;
  Util.Vec.push v 3;
  Util.Vec.clear v;
  check Alcotest.bool "empty" true (Util.Vec.is_empty v);
  Util.Vec.push v 9;
  check Alcotest.int "after reuse" 9 (Util.Vec.get v 0)

let test_vec_iter_orders () =
  let v = Util.Vec.create ~dummy:0 () in
  List.iter (Util.Vec.push v) [ 1; 2; 3 ];
  let fwd = ref [] and bwd = ref [] in
  Util.Vec.iter (fun x -> fwd := x :: !fwd) v;
  Util.Vec.iter_rev (fun x -> bwd := x :: !bwd) v;
  check (Alcotest.list Alcotest.int) "forward" [ 3; 2; 1 ] !fwd;
  check (Alcotest.list Alcotest.int) "reverse" [ 1; 2; 3 ] !bwd

let test_vec_exists () =
  let v = Util.Vec.create ~dummy:0 () in
  List.iter (Util.Vec.push v) [ 2; 4; 6 ];
  check Alcotest.bool "found" true (Util.Vec.exists (fun x -> x = 4) v);
  check Alcotest.bool "absent" false (Util.Vec.exists (fun x -> x = 5) v)

let test_vec_get_bounds () =
  let v = Util.Vec.create ~dummy:0 () in
  Util.Vec.push v 1;
  Alcotest.check_raises "oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Util.Vec.get v 1))

(* ---- Id_gen ---- *)

let test_id_gen_unique_single () =
  let seen = Hashtbl.create 64 in
  for _ = 1 to 5_000 do
    let id = Util.Id_gen.next () in
    if Hashtbl.mem seen id then Alcotest.failf "duplicate id %d" id;
    Hashtbl.add seen id ()
  done

let test_id_gen_unique_concurrent () =
  let results =
    Harness.Exec.run_each ~threads:4 (fun _ ->
        List.init 2_000 (fun _ -> Util.Id_gen.next ()))
  in
  let all = List.concat results in
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun id ->
      if Hashtbl.mem seen id then Alcotest.failf "duplicate id %d" id;
      Hashtbl.add seen id ())
    all

(* ---- Tid ---- *)

let test_tid_register_idempotent () =
  let a = Util.Tid.register () in
  let b = Util.Tid.register () in
  check Alcotest.int "same" a b

let test_tid_distinct_across_domains () =
  ignore (Util.Tid.register ());
  let tids = Harness.Exec.run_each ~threads:4 (fun _ -> Util.Tid.get ()) in
  let sorted = List.sort_uniq compare tids in
  check Alcotest.int "distinct" 4 (List.length sorted);
  List.iter
    (fun t ->
      if t < 0 || t >= Util.Tid.max_threads then Alcotest.failf "bad tid %d" t)
    tids

let test_tid_high_water () =
  ignore (Util.Tid.register ());
  if Util.Tid.high_water () < 1 then Alcotest.fail "hwm < 1"

(* ---- Once ---- *)

let test_once_single () =
  let count = ref 0 in
  let o =
    Util.Once.create (fun () ->
        incr count;
        42)
  in
  check Alcotest.bool "not forced" false (Util.Once.is_forced o);
  check Alcotest.int "value" 42 (Util.Once.get o);
  check Alcotest.int "again" 42 (Util.Once.get o);
  check Alcotest.int "thunk ran once" 1 !count;
  check Alcotest.bool "forced" true (Util.Once.is_forced o)

let test_once_concurrent_force () =
  (* Regression: Lazy.force raises CamlinternalLazy.Undefined when domains
     race; Once must instead run the thunk exactly once and give everyone
     the same value. *)
  let count = Atomic.make 0 in
  let o =
    Util.Once.create (fun () ->
        Atomic.incr count;
        Unix.sleepf 0.01 (* widen the race window *);
        Atomic.get count)
  in
  let values = Harness.Exec.run_each ~threads:4 (fun _ -> Util.Once.get o) in
  check Alcotest.int "thunk ran once" 1 (Atomic.get count);
  List.iter (fun v -> check Alcotest.int "same value" 1 v) values

(* ---- Backoff (sanity only: it must terminate and not raise) ---- *)

let test_backoff_runs () =
  let b = Util.Backoff.create () in
  for _ = 1 to 12 do
    Util.Backoff.once b
  done;
  Util.Backoff.reset b;
  Util.Backoff.once b;
  Util.Backoff.exponential ~attempt:1;
  Util.Backoff.exponential ~attempt:5;
  Util.Backoff.yield ()

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentiles are monotone in p" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0. 1000.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let arr = Array.of_list xs in
      let p50 = Util.Stats.percentile arr 50. in
      let p90 = Util.Stats.percentile arr 90. in
      let p99 = Util.Stats.percentile arr 99. in
      p50 <= p90 && p90 <= p99)

let qcheck_percentile_member =
  QCheck.Test.make ~name:"nearest-rank percentile is a sample" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0. 1000.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let arr = Array.of_list xs in
      let p = Util.Stats.percentile arr 90. in
      List.exists (fun x -> x = p) xs)

let qcheck_vec_model =
  QCheck.Test.make ~name:"vec behaves like a list" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let v = Util.Vec.create ~dummy:0 () in
      List.iter (Util.Vec.push v) xs;
      Array.to_list (Util.Vec.to_array v) = xs
      && Util.Vec.length v = List.length xs)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "sprng",
        [
          Alcotest.test_case "deterministic" `Quick test_sprng_deterministic;
          Alcotest.test_case "int range" `Quick test_sprng_int_range;
          Alcotest.test_case "float range" `Quick test_sprng_float_range;
          Alcotest.test_case "spread" `Quick test_sprng_spread;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "theta=0 uniform" `Quick test_zipf_uniform_theta0;
          Alcotest.test_case "theta=0.9 skewed" `Quick test_zipf_skew;
          Alcotest.test_case "in range for all thetas" `Quick test_zipf_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile unsorted" `Quick
            test_stats_percentile_unsorted;
          Alcotest.test_case "percentiles_in_place" `Quick
            test_stats_percentiles_in_place;
          Alcotest.test_case "max" `Quick test_stats_max;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          q qcheck_percentile_monotone;
          q qcheck_percentile_member;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "clear reuses storage" `Quick test_vec_clear_reuse;
          Alcotest.test_case "iter orders" `Quick test_vec_iter_orders;
          Alcotest.test_case "exists" `Quick test_vec_exists;
          Alcotest.test_case "get bounds" `Quick test_vec_get_bounds;
          q qcheck_vec_model;
        ] );
      ( "id_gen",
        [
          Alcotest.test_case "unique single-thread" `Quick
            test_id_gen_unique_single;
          Alcotest.test_case "unique across domains" `Quick
            test_id_gen_unique_concurrent;
        ] );
      ( "tid",
        [
          Alcotest.test_case "register idempotent" `Quick
            test_tid_register_idempotent;
          Alcotest.test_case "distinct across domains" `Quick
            test_tid_distinct_across_domains;
          Alcotest.test_case "high water" `Quick test_tid_high_water;
        ] );
      ( "once",
        [
          Alcotest.test_case "single domain" `Quick test_once_single;
          Alcotest.test_case "concurrent force" `Quick
            test_once_concurrent_force;
        ] );
      ("backoff", [ Alcotest.test_case "runs" `Quick test_backoff_runs ]);
    ]
