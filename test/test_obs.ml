(* Tests for the telemetry subsystem: histogram bucket math, padded
   counters, the abort-reason-sums-equal-aborts invariant under a
   contended multi-domain run, and well-formedness of the exported Chrome
   trace JSON. *)

module Obs = Twoplsf_obs

let check = Alcotest.check

(* ---- Histogram bucket math ---- *)

let test_bucket_boundaries () =
  let b = Obs.Histogram.bucket_of_value in
  check Alcotest.int "v=0" 0 (b 0);
  check Alcotest.int "v=-5" 0 (b (-5));
  check Alcotest.int "v=min_int" 0 (b min_int);
  check Alcotest.int "v=1" 1 (b 1);
  check Alcotest.int "v=2" 2 (b 2);
  check Alcotest.int "v=3" 2 (b 3);
  check Alcotest.int "v=4" 3 (b 4);
  check Alcotest.int "v=7" 3 (b 7);
  check Alcotest.int "v=8" 4 (b 8);
  (* bucket b holds [2^(b-1), 2^b): both edges of each power of two *)
  for k = 1 to 45 do
    check Alcotest.int
      (Printf.sprintf "v=2^%d" k)
      (k + 1)
      (b (1 lsl k));
    check Alcotest.int
      (Printf.sprintf "v=2^%d - 1" k)
      k
      (b ((1 lsl k) - 1))
  done

let test_bucket_overflow () =
  let last = Obs.Histogram.num_buckets - 1 in
  check Alcotest.int "max_int" last (Obs.Histogram.bucket_of_value max_int);
  check Alcotest.int "2^60" last (Obs.Histogram.bucket_of_value (1 lsl 60));
  (* largest non-overflow value *)
  check Alcotest.int "2^46 - 1" (last - 1)
    (Obs.Histogram.bucket_of_value ((1 lsl 46) - 1))

let test_bucket_lower_bound_roundtrip () =
  for b = 0 to Obs.Histogram.num_buckets - 1 do
    let lo = Obs.Histogram.bucket_lower_bound b in
    check Alcotest.int
      (Printf.sprintf "bucket_of(lower_bound %d)" b)
      b
      (Obs.Histogram.bucket_of_value lo)
  done;
  (* lower bounds strictly increase from bucket 1 on *)
  for b = 1 to Obs.Histogram.num_buckets - 2 do
    if
      Obs.Histogram.bucket_lower_bound (b + 1)
      <= Obs.Histogram.bucket_lower_bound b
    then Alcotest.failf "lower bounds not increasing at %d" b
  done

let test_histogram_record_percentile () =
  let h = Obs.Histogram.create () in
  (* 90 small samples (bucket 1) and 10 large ones (bucket of 1024 = 11) *)
  for _ = 1 to 90 do
    Obs.Histogram.record h ~tid:0 1
  done;
  for _ = 1 to 10 do
    Obs.Histogram.record h ~tid:1 1024
  done;
  check Alcotest.int "total" 100 (Obs.Histogram.total h);
  let snap = Obs.Histogram.snapshot h in
  check Alcotest.int "bucket 1" 90 snap.(1);
  check Alcotest.int "bucket 11" 10 snap.(11);
  (* upper bound = largest integer in the bucket: 2^b - 1 *)
  check Alcotest.int "p50 upper" 1 (Obs.Histogram.percentile_upper h 50.);
  check Alcotest.int "p99 upper" 2047 (Obs.Histogram.percentile_upper h 99.);
  Obs.Histogram.reset h;
  check Alcotest.int "total after reset" 0 (Obs.Histogram.total h)

(* ---- Padded counters ---- *)

let test_padded_counters () =
  let p = Obs.Padded.create () in
  Obs.Padded.incr p ~tid:0;
  Obs.Padded.incr p ~tid:0;
  Obs.Padded.add p ~tid:3 40;
  check Alcotest.int "get tid 0" 2 (Obs.Padded.get p ~tid:0);
  check Alcotest.int "get tid 3" 40 (Obs.Padded.get p ~tid:3);
  check Alcotest.int "sum" 42 (Obs.Padded.sum p);
  Obs.Padded.reset p;
  check Alcotest.int "sum after reset" 0 (Obs.Padded.sum p)

(* ---- Contended multi-domain run: reasons sum to aborts () ---- *)

module S = Twoplsf.Stm

let contended_run () =
  let tvs = Array.init 8 (fun _ -> S.tvar 0) in
  let _ =
    Harness.Exec.run_each ~threads:4 (fun i ->
        for _ = 1 to 400 do
          S.atomic (fun tx ->
              if i land 1 = 0 then
                for j = 0 to 7 do
                  S.write tx tvs.(j) (S.read tx tvs.(j) + 1)
                done
              else
                for j = 7 downto 0 do
                  S.write tx tvs.(j) (S.read tx tvs.(j) + 1)
                done)
        done)
  in
  Array.fold_left (fun acc tv -> acc + S.atomic (fun tx -> S.read tx tv)) 0 tvs

let test_abort_reasons_sum () =
  Obs.Telemetry.enable ();
  S.reset_stats ();
  let total = contended_run () in
  (* 4 domains x 400 txns x 8 increments, plus the 8 verification reads *)
  check Alcotest.int "counter total" (4 * 400 * 8) total;
  let sc =
    match Obs.Scope.find "2PLSF" with
    | Some sc -> sc
    | None -> Alcotest.fail "no 2PLSF scope"
  in
  let reasons = Obs.Scope.abort_counts sc in
  check Alcotest.int "reason count" Obs.Events.num_abort_reasons
    (List.length reasons);
  let sum = List.fold_left (fun a (_, n) -> a + n) 0 reasons in
  check Alcotest.int "reasons sum to aborts ()" (S.aborts ()) sum;
  check Alcotest.int "aborts_total agrees" (S.aborts ())
    (Obs.Scope.aborts_total sc)

(* ---- Chrome trace JSON ---- *)

(* A hand-rolled mini JSON parser (no JSON library in the build
   environment): just enough for the exporter's output. *)
type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              for _ = 1 to 4 do
                advance ()
              done;
              Buffer.add_char b '?'
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> J_num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elements [])
        end
    | '"' -> J_str (parse_string ())
    | 't' -> literal "true" (J_bool true)
    | 'f' -> literal "false" (J_bool false)
    | 'n' -> literal "null" J_null
    | '-' | '0' .. '9' -> parse_number ()
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj k =
  match obj with
  | J_obj kvs -> List.assoc_opt k kvs
  | _ -> None

let num_field obj k =
  match field obj k with
  | Some (J_num f) -> f
  | _ -> Alcotest.failf "missing numeric field %s" k

let str_field obj k =
  match field obj k with
  | Some (J_str s) -> s
  | _ -> Alcotest.failf "missing string field %s" k

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Every pair of "X" spans on one thread must be disjoint or nested — a
   lock-wait span sits inside its attempt's commit/abort span, and
   successive attempts never overlap.  Sweep with a stack of open span
   ends. *)
let check_spans_nest spans =
  let eps = 1e-6 in
  let spans =
    List.sort
      (fun (s1, e1, _) (s2, e2, _) ->
        match compare s1 s2 with 0 -> compare e2 e1 | c -> c)
      spans
  in
  let stack = ref [] in
  List.iter
    (fun (s, e, name) ->
      while
        match !stack with
        | (top, _) :: rest when top <= s +. eps ->
            stack := rest;
            true
        | _ -> false
      do
        ()
      done;
      (match !stack with
      | (top, top_name) :: _ when e > top +. eps ->
          Alcotest.failf
            "spans overlap without nesting: %s [%f, %f] vs %s ending %f" name s
            e top_name top
      | _ -> ());
      stack := (e, name) :: !stack)
    spans

let test_trace_export () =
  Obs.Telemetry.enable_tracing ();
  Obs.Tracer.reset ();
  S.reset_stats ();
  ignore (contended_run ());
  let path = Filename.temp_file "twoplsf_trace" ".json" in
  Obs.Tracer.export ~path;
  let doc = parse_json (read_file path) in
  Sys.remove path;
  let events =
    match field doc "traceEvents" with
    | Some (J_arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  if events = [] then Alcotest.fail "empty trace";
  let tids = Hashtbl.create 8 in
  let spans_by_tid : (int, (float * float * string) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let commit_spans = ref 0 in
  List.iter
    (fun ev ->
      let name = str_field ev "name" in
      let ph = str_field ev "ph" in
      let tid = int_of_float (num_field ev "tid") in
      ignore (num_field ev "pid");
      let ts = num_field ev "ts" in
      Hashtbl.replace tids tid ();
      match ph with
      | "X" ->
          let dur = num_field ev "dur" in
          if dur < 0. then Alcotest.failf "negative dur on %s" name;
          if name = "2PLSF:commit" then incr commit_spans;
          let r =
            match Hashtbl.find_opt spans_by_tid tid with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add spans_by_tid tid r;
                r
          in
          r := (ts, ts +. dur, name) :: !r
      | "i" -> ()
      | _ -> Alcotest.failf "unexpected phase %s" ph)
    events;
  if Hashtbl.length tids < 2 then
    Alcotest.failf "expected events from >= 2 threads, got %d"
      (Hashtbl.length tids);
  if !commit_spans = 0 then Alcotest.fail "no 2PLSF:commit span";
  Hashtbl.iter (fun _ spans -> check_spans_nest !spans) spans_by_tid

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "overflow bucket" `Quick test_bucket_overflow;
          Alcotest.test_case "lower-bound roundtrip" `Quick
            test_bucket_lower_bound_roundtrip;
          Alcotest.test_case "record + percentile" `Quick
            test_histogram_record_percentile;
        ] );
      ("padded", [ Alcotest.test_case "counters" `Quick test_padded_counters ]);
      ( "taxonomy",
        [
          Alcotest.test_case "reasons sum to aborts" `Quick
            test_abort_reasons_sum;
        ] );
      ( "trace",
        [ Alcotest.test_case "chrome JSON export" `Quick test_trace_export ] );
    ]
