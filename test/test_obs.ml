(* Tests for the telemetry subsystem: histogram bucket math, padded
   counters, the abort-reason-sums-equal-aborts invariant under a
   contended multi-domain run, and well-formedness of the exported Chrome
   trace JSON. *)

module Obs = Twoplsf_obs

let check = Alcotest.check

(* ---- Histogram bucket math ---- *)

let test_bucket_boundaries () =
  let b = Obs.Histogram.bucket_of_value in
  check Alcotest.int "v=0" 0 (b 0);
  check Alcotest.int "v=-5" 0 (b (-5));
  check Alcotest.int "v=min_int" 0 (b min_int);
  check Alcotest.int "v=1" 1 (b 1);
  check Alcotest.int "v=2" 2 (b 2);
  check Alcotest.int "v=3" 2 (b 3);
  check Alcotest.int "v=4" 3 (b 4);
  check Alcotest.int "v=7" 3 (b 7);
  check Alcotest.int "v=8" 4 (b 8);
  (* bucket b holds [2^(b-1), 2^b): both edges of each power of two *)
  for k = 1 to 45 do
    check Alcotest.int
      (Printf.sprintf "v=2^%d" k)
      (k + 1)
      (b (1 lsl k));
    check Alcotest.int
      (Printf.sprintf "v=2^%d - 1" k)
      k
      (b ((1 lsl k) - 1))
  done

let test_bucket_overflow () =
  let last = Obs.Histogram.num_buckets - 1 in
  check Alcotest.int "max_int" last (Obs.Histogram.bucket_of_value max_int);
  check Alcotest.int "2^60" last (Obs.Histogram.bucket_of_value (1 lsl 60));
  (* largest non-overflow value *)
  check Alcotest.int "2^46 - 1" (last - 1)
    (Obs.Histogram.bucket_of_value ((1 lsl 46) - 1))

let test_bucket_lower_bound_roundtrip () =
  for b = 0 to Obs.Histogram.num_buckets - 1 do
    let lo = Obs.Histogram.bucket_lower_bound b in
    check Alcotest.int
      (Printf.sprintf "bucket_of(lower_bound %d)" b)
      b
      (Obs.Histogram.bucket_of_value lo)
  done;
  (* lower bounds strictly increase from bucket 1 on *)
  for b = 1 to Obs.Histogram.num_buckets - 2 do
    if
      Obs.Histogram.bucket_lower_bound (b + 1)
      <= Obs.Histogram.bucket_lower_bound b
    then Alcotest.failf "lower bounds not increasing at %d" b
  done

let test_histogram_record_percentile () =
  let h = Obs.Histogram.create () in
  (* 90 small samples (bucket 1) and 10 large ones (bucket of 1024 = 11) *)
  for _ = 1 to 90 do
    Obs.Histogram.record h ~tid:0 1
  done;
  for _ = 1 to 10 do
    Obs.Histogram.record h ~tid:1 1024
  done;
  check Alcotest.int "total" 100 (Obs.Histogram.total h);
  let snap = Obs.Histogram.snapshot h in
  check Alcotest.int "bucket 1" 90 snap.(1);
  check Alcotest.int "bucket 11" 10 snap.(11);
  (* upper bound = largest integer in the bucket: 2^b - 1 *)
  check Alcotest.int "p50 upper" 1 (Obs.Histogram.percentile_upper h 50.);
  check Alcotest.int "p99 upper" 2047 (Obs.Histogram.percentile_upper h 99.);
  Obs.Histogram.reset h;
  check Alcotest.int "total after reset" 0 (Obs.Histogram.total h)

(* ---- Percentile edge cases ---- *)

let test_percentile_edges () =
  let h = Obs.Histogram.create () in
  (* empty histogram: every percentile is 0 *)
  check Alcotest.int "empty p50" 0 (Obs.Histogram.percentile_upper h 50.);
  check Alcotest.int "empty p99.9" 0 (Obs.Histogram.percentile_upper h 99.9);
  check Alcotest.int "empty buckets p50" 0
    (Obs.Histogram.percentile_upper_of_buckets
       (Array.make Obs.Histogram.num_buckets 0)
       50.);
  (* every sample in one bucket: every percentile is that bucket's upper
     bound, including the extreme p's *)
  for _ = 1 to 10 do
    Obs.Histogram.record h ~tid:0 5
  done;
  List.iter
    (fun p ->
      check Alcotest.int
        (Printf.sprintf "single-bucket p%g" p)
        7
        (Obs.Histogram.percentile_upper h p))
    [ 0.1; 50.; 99.; 99.9; 100. ];
  (* a tail sample in the overflow bucket saturates high percentiles to
     max_int while p50 stays in the low bucket *)
  Obs.Histogram.reset h;
  Obs.Histogram.record h ~tid:0 1;
  Obs.Histogram.record h ~tid:1 max_int;
  check Alcotest.int "p50 stays low" 1 (Obs.Histogram.percentile_upper h 50.);
  check Alcotest.int "p99 saturates" max_int
    (Obs.Histogram.percentile_upper h 99.);
  (* all samples in the saturating top bucket: even p1 is max_int *)
  Obs.Histogram.reset h;
  for _ = 1 to 3 do
    Obs.Histogram.record h ~tid:0 (1 lsl 60)
  done;
  check Alcotest.int "saturated top bucket p1" max_int
    (Obs.Histogram.percentile_upper h 1.)

(* ---- Snapshot-delta arithmetic ---- *)

let counts = Alcotest.(list (pair string int))

let test_snapshot_arith () =
  let cur = [ ("a", 5); ("b", 2); ("c", 0) ] in
  let prev = [ ("a", 3); ("b", 4) ] in
  check counts "diff clamps at 0 and counts missing-in-prev from 0"
    [ ("a", 2); ("b", 0); ("c", 0) ]
    (Obs.Snapshot.diff_counts cur prev);
  check counts "diff against empty prev" cur (Obs.Snapshot.diff_counts cur []);
  check counts "add: [] is left identity" cur
    (Obs.Snapshot.add_counts [] cur);
  check counts "add: [] is right identity" cur
    (Obs.Snapshot.add_counts cur []);
  check counts "add sums positionally"
    [ ("a", 8); ("b", 6) ]
    (Obs.Snapshot.add_counts [ ("a", 5); ("b", 2) ] [ ("a", 3); ("b", 4) ]);
  check
    Alcotest.(array int)
    "bucket diff clamps" [| 3; 0; 2 |]
    (Obs.Snapshot.diff_buckets [| 5; 1; 2 |] [| 2; 3; 0 |])

(* ---- Padded counters ---- *)

let test_padded_counters () =
  let p = Obs.Padded.create () in
  Obs.Padded.incr p ~tid:0;
  Obs.Padded.incr p ~tid:0;
  Obs.Padded.add p ~tid:3 40;
  check Alcotest.int "get tid 0" 2 (Obs.Padded.get p ~tid:0);
  check Alcotest.int "get tid 3" 40 (Obs.Padded.get p ~tid:3);
  check Alcotest.int "sum" 42 (Obs.Padded.sum p);
  Obs.Padded.reset p;
  check Alcotest.int "sum after reset" 0 (Obs.Padded.sum p)

(* ---- Contended multi-domain run: reasons sum to aborts () ---- *)

module S = Twoplsf.Stm

let contended_run () =
  let tvs = Array.init 8 (fun _ -> S.tvar 0) in
  let _ =
    Harness.Exec.run_each ~threads:4 (fun i ->
        for _ = 1 to 400 do
          S.atomic (fun tx ->
              if i land 1 = 0 then
                for j = 0 to 7 do
                  S.write tx tvs.(j) (S.read tx tvs.(j) + 1)
                done
              else
                for j = 7 downto 0 do
                  S.write tx tvs.(j) (S.read tx tvs.(j) + 1)
                done)
        done)
  in
  Array.fold_left (fun acc tv -> acc + S.atomic (fun tx -> S.read tx tv)) 0 tvs

let test_abort_reasons_sum () =
  Obs.Telemetry.enable ();
  S.reset_stats ();
  let total = contended_run () in
  (* 4 domains x 400 txns x 8 increments, plus the 8 verification reads *)
  check Alcotest.int "counter total" (4 * 400 * 8) total;
  let sc =
    match Obs.Scope.find "2PLSF" with
    | Some sc -> sc
    | None -> Alcotest.fail "no 2PLSF scope"
  in
  let reasons = Obs.Scope.abort_counts sc in
  check Alcotest.int "reason count" Obs.Events.num_abort_reasons
    (List.length reasons);
  let sum = List.fold_left (fun a (_, n) -> a + n) 0 reasons in
  check Alcotest.int "reasons sum to aborts ()" (S.aborts ()) sum;
  check Alcotest.int "aborts_total agrees" (S.aborts ())
    (Obs.Scope.aborts_total sc)

(* ---- Latency-phase accounting ---- *)

let busy_wait_ns ns =
  let t0 = Obs.Telemetry.now_ns () in
  while Obs.Telemetry.now_ns () - t0 < ns do
    Domain.cpu_relax ()
  done

(* Deterministic single-thread lifecycle: one aborted attempt, then a
   committing attempt with a timed commit step.  Checks each phase got at
   least its busy-wait and that the partition tiles the transaction. *)
let test_phase_accounting_unit () =
  Obs.Telemetry.enable ();
  let sc = Obs.Scope.create "phase-unit" in
  let tid = 0 in
  let txn_t0 = Obs.Telemetry.now_ns () in
  busy_wait_ns 400_000;
  Obs.Scope.txn_abort sc ~tid ~att_t0_ns:txn_t0 Obs.Events.Write_lock_conflict;
  let att2 = Obs.Telemetry.now_ns () in
  busy_wait_ns 300_000;
  let c0 = Obs.Telemetry.now_ns () in
  busy_wait_ns 100_000;
  Obs.Scope.txn_commit sc ~tid ~txn_t0_ns:txn_t0 ~att_t0_ns:att2
    ~commit_t0_ns:c0 ();
  let phases = Obs.Scope.phase_counts sc in
  let get ph =
    match List.assoc_opt (Obs.Phase.label ph) phases with
    | Some ns -> ns
    | None -> Alcotest.failf "missing phase %s" (Obs.Phase.label ph)
  in
  if get Obs.Phase.Wasted_retry < 400_000 then
    Alcotest.failf "wasted-retry %d < aborted attempt" (get Obs.Phase.Wasted_retry);
  if get Obs.Phase.Commit < 100_000 then
    Alcotest.failf "commit phase %d too small" (get Obs.Phase.Commit);
  if get Obs.Phase.Body < 600_000 then
    Alcotest.failf "body phase %d too small" (get Obs.Phase.Body);
  let total = Obs.Scope.txn_total_ns sc in
  if total < 800_000 then Alcotest.failf "txn_total_ns %d too small" total;
  let part =
    List.fold_left (fun acc ph -> acc + get ph) 0 Obs.Phase.partition
  in
  let ratio = float_of_int part /. float_of_int total in
  if ratio < 0.95 || ratio > 1.05 then
    Alcotest.failf "partition covers %.3f of txn wall-clock" ratio;
  (* the abort also counted its reason *)
  check Alcotest.int "one abort" 1 (Obs.Scope.aborts_total sc)

(* End-to-end: the instrumented 2PLSF run's partition must tile its
   transactions' wall-clock within 5% (the ISSUE acceptance bound). *)
let test_phase_partition_contended () =
  Obs.Telemetry.enable ();
  S.reset_stats ();
  ignore (contended_run ());
  let sc =
    match Obs.Scope.find "2PLSF" with
    | Some sc -> sc
    | None -> Alcotest.fail "no 2PLSF scope"
  in
  let phases = Obs.Scope.phase_counts sc in
  let total = Obs.Scope.txn_total_ns sc in
  if total <= 0 then Alcotest.fail "no transaction time recorded";
  let part =
    List.fold_left
      (fun acc ph ->
        acc
        + Option.value ~default:0
            (List.assoc_opt (Obs.Phase.label ph) phases))
      0 Obs.Phase.partition
  in
  let ratio = float_of_int part /. float_of_int total in
  if ratio < 0.95 || ratio > 1.05 then
    Alcotest.failf "phase partition covers %.3f of txn wall-clock" ratio

(* ---- Named gauge providers ---- *)

let test_gauge_providers () =
  let clean () =
    List.iter
      (fun name -> Obs.Monitor.remove_gauges ~name)
      [ "g1"; "g2"; "boom" ]
  in
  clean ();
  Fun.protect ~finally:clean (fun () ->
      Obs.Monitor.add_gauges ~name:"g1" (fun () -> [ ("x", 1) ]);
      Obs.Monitor.add_gauges ~name:"g2" (fun () -> [ ("y", 2) ]);
      Obs.Monitor.add_gauges ~name:"boom" (fun () -> failwith "boom");
      let vs = Obs.Monitor.gauge_values () in
      check (Alcotest.option Alcotest.int) "g1 visible" (Some 1)
        (List.assoc_opt "x" vs);
      check (Alcotest.option Alcotest.int) "g2 visible" (Some 2)
        (List.assoc_opt "y" vs);
      (* a raising provider is skipped, not fatal *)
      Obs.Monitor.add_gauges ~name:"g1" (fun () -> [ ("x", 7) ]);
      let vs = Obs.Monitor.gauge_values () in
      check (Alcotest.option Alcotest.int) "replace by name" (Some 7)
        (List.assoc_opt "x" vs);
      check Alcotest.int "no duplicate from replaced provider" 1
        (List.length (List.filter (fun (k, _) -> k = "x") vs));
      Obs.Monitor.remove_gauges ~name:"g2";
      check (Alcotest.option Alcotest.int) "removed provider gone" None
        (List.assoc_opt "y" (Obs.Monitor.gauge_values ())))

(* ---- OpenMetrics exporter ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_exporter_render () =
  Obs.Telemetry.enable ();
  S.reset_stats ();
  ignore (contended_run ());
  let body = Obs.Exporter.render () in
  List.iter
    (fun needle ->
      if not (contains body needle) then
        Alcotest.failf "render missing %S" needle)
    [
      "# TYPE twoplsf_txns counter";
      "twoplsf_txns_total{scope=\"2PLSF\"}";
      "twoplsf_aborts_total{scope=\"2PLSF\",reason=\"write-lock-conflict\"}";
      "# TYPE twoplsf_lock_wait_ns histogram";
      "twoplsf_lock_wait_ns_bucket{scope=\"2PLSF\",le=\"+Inf\"}";
      "twoplsf_lock_wait_ns_count{scope=\"2PLSF\"}";
      "twoplsf_phase_ns_total{scope=\"2PLSF\",phase=\"body\"}";
      "twoplsf_txn_latency_ns_bucket";
    ];
  let eof = "# EOF\n" in
  let tail =
    String.sub body (String.length body - String.length eof)
      (String.length eof)
  in
  check Alcotest.string "terminated by # EOF" eof tail

let read_all fd =
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes b chunk 0 n;
        go ()
  in
  go ();
  Buffer.contents b

let http_get ~port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
          path
      in
      ignore (Unix.write_substring sock req 0 (String.length req));
      read_all sock)

let test_exporter_http () =
  Obs.Telemetry.enable ();
  let port = Obs.Exporter.start ~port:0 () in
  Fun.protect
    ~finally:(fun () -> Obs.Exporter.stop ())
    (fun () ->
      check Alcotest.bool "running" true (Obs.Exporter.running ());
      let resp = http_get ~port "/metrics" in
      if not (contains resp "HTTP/1.1 200") then
        Alcotest.failf "bad status: %s" (String.sub resp 0 (Stdlib.min 40 (String.length resp)));
      if not (contains resp "twoplsf_txns_total") then
        Alcotest.fail "payload missing counters";
      if not (contains resp "# EOF") then Alcotest.fail "payload missing # EOF";
      let nf = http_get ~port "/nope" in
      if not (contains nf "404") then Alcotest.fail "expected 404");
  check Alcotest.bool "stopped" false (Obs.Exporter.running ())

let test_exporter_extras () =
  Obs.Exporter.register_extra ~name:"t1" (fun b ->
      Buffer.add_string b "# TYPE extra_one counter\nextra_one 7\n");
  (* replace-by-name, not append *)
  Obs.Exporter.register_extra ~name:"t1" (fun b ->
      Buffer.add_string b "# TYPE extra_one counter\nextra_one 8\n");
  (* a provider that raises is skipped, never kills the scrape *)
  Obs.Exporter.register_extra ~name:"t2" (fun _ -> failwith "boom");
  Fun.protect
    ~finally:(fun () ->
      Obs.Exporter.unregister_extra ~name:"t1";
      Obs.Exporter.unregister_extra ~name:"t2")
    (fun () ->
      let body = Obs.Exporter.render () in
      if not (contains body "extra_one 8") then
        Alcotest.fail "extra provider missing from render";
      if contains body "extra_one 7" then
        Alcotest.fail "replaced provider still rendered");
  let body = Obs.Exporter.render () in
  if contains body "extra_one" then
    Alcotest.fail "unregistered provider still rendered"

(* The PR-9 fd-leak fix: a failed bind (port already taken) must close
   the listener socket so an immediate retry on a free port works. *)
let test_exporter_bind_failure_no_leak () =
  let blocker = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close blocker with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind blocker (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
      Unix.listen blocker 1;
      let taken =
        match Unix.getsockname blocker with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> Alcotest.fail "no port"
      in
      (match Obs.Exporter.start ~port:taken () with
      | _ -> Alcotest.fail "bind on a taken port succeeded"
      | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ());
      check Alcotest.bool "not running after failed bind" false
        (Obs.Exporter.running ());
      (* the real regression check: repeated failed starts must not
         exhaust fds, and a good port must still come up *)
      for _ = 1 to 64 do
        match Obs.Exporter.start ~port:taken () with
        | _ -> Alcotest.fail "bind on a taken port succeeded"
        | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) -> ()
      done;
      let port = Obs.Exporter.start ~port:0 () in
      Fun.protect
        ~finally:(fun () -> Obs.Exporter.stop ())
        (fun () ->
          if port = 0 then Alcotest.fail "no ephemeral port";
          check Alcotest.bool "running after recovery" true
            (Obs.Exporter.running ())))

(* ---- Chrome trace JSON ---- *)

(* A hand-rolled mini JSON parser (no JSON library in the build
   environment): just enough for the exporter's output. *)
type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '\000' -> fail "unterminated string"
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              for _ = 1 to 4 do
                advance ()
              done;
              Buffer.add_char b '?'
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> J_num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          J_obj (members [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          J_arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          J_arr (elements [])
        end
    | '"' -> J_str (parse_string ())
    | 't' -> literal "true" (J_bool true)
    | 'f' -> literal "false" (J_bool false)
    | 'n' -> literal "null" J_null
    | '-' | '0' .. '9' -> parse_number ()
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj k =
  match obj with
  | J_obj kvs -> List.assoc_opt k kvs
  | _ -> None

let num_field obj k =
  match field obj k with
  | Some (J_num f) -> f
  | _ -> Alcotest.failf "missing numeric field %s" k

let str_field obj k =
  match field obj k with
  | Some (J_str s) -> s
  | _ -> Alcotest.failf "missing string field %s" k

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* Every pair of "X" spans on one thread must be disjoint or nested — a
   lock-wait span sits inside its attempt's commit/abort span, and
   successive attempts never overlap.  Sweep with a stack of open span
   ends. *)
let check_spans_nest spans =
  let eps = 1e-6 in
  let spans =
    List.sort
      (fun (s1, e1, _) (s2, e2, _) ->
        match compare s1 s2 with 0 -> compare e2 e1 | c -> c)
      spans
  in
  let stack = ref [] in
  List.iter
    (fun (s, e, name) ->
      while
        match !stack with
        | (top, _) :: rest when top <= s +. eps ->
            stack := rest;
            true
        | _ -> false
      do
        ()
      done;
      (match !stack with
      | (top, top_name) :: _ when e > top +. eps ->
          Alcotest.failf
            "spans overlap without nesting: %s [%f, %f] vs %s ending %f" name s
            e top_name top
      | _ -> ());
      stack := (e, name) :: !stack)
    spans

let test_trace_export () =
  Obs.Telemetry.enable_tracing ();
  Obs.Tracer.reset ();
  S.reset_stats ();
  ignore (contended_run ());
  let path = Filename.temp_file "twoplsf_trace" ".json" in
  Obs.Tracer.export ~path;
  let doc = parse_json (read_file path) in
  Sys.remove path;
  let events =
    match field doc "traceEvents" with
    | Some (J_arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  if events = [] then Alcotest.fail "empty trace";
  let tids = Hashtbl.create 8 in
  let spans_by_tid : (int, (float * float * string) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let commit_spans = ref 0 in
  List.iter
    (fun ev ->
      let name = str_field ev "name" in
      let ph = str_field ev "ph" in
      let tid = int_of_float (num_field ev "tid") in
      ignore (num_field ev "pid");
      let ts = num_field ev "ts" in
      Hashtbl.replace tids tid ();
      match ph with
      | "X" ->
          let dur = num_field ev "dur" in
          if dur < 0. then Alcotest.failf "negative dur on %s" name;
          if name = "2PLSF:commit" then incr commit_spans;
          let r =
            match Hashtbl.find_opt spans_by_tid tid with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add spans_by_tid tid r;
                r
          in
          r := (ts, ts +. dur, name) :: !r
      | "i" -> ()
      | _ -> Alcotest.failf "unexpected phase %s" ph)
    events;
  if Hashtbl.length tids < 2 then
    Alcotest.failf "expected events from >= 2 threads, got %d"
      (Hashtbl.length tids);
  if !commit_spans = 0 then Alcotest.fail "no 2PLSF:commit span";
  Hashtbl.iter (fun _ spans -> check_spans_nest !spans) spans_by_tid

(* ---- Conflict cartography: Space-Saving sketch ---- *)

module C = Obs.Conflict

(* Fewer distinct keys than K: estimates are exact and err is 0. *)
let test_sketch_exact_under_k () =
  let c = C.create ~k:8 "sketch-exact" in
  for i = 0 to 5 do
    C.record_wait c ~tid:0 ~lock:i ~write:(i land 1 = 1) ~ns:(100 * (i + 1))
  done;
  C.record_wait c ~tid:0 ~lock:3 ~write:false ~ns:1000;
  let hots = C.top c in
  check Alcotest.int "6 keys resident" 6 (List.length hots);
  let h = List.hd hots in
  check Alcotest.int "lock 3 ranks first" 3 h.C.lock;
  check Alcotest.int "exact weight" 1400 h.C.weight_ns;
  check Alcotest.int "zero err below K keys" 0 h.C.err_ns;
  check Alcotest.int "hits" 2 h.C.hits;
  check Alcotest.int "read split" 1000 h.C.read_wait_ns;
  check Alcotest.int "write split" 400 h.C.write_wait_ns;
  check Alcotest.int "total = sum of waits"
    (100 + 200 + 300 + 400 + 500 + 600 + 1000)
    (C.total_weight_ns c);
  (* negative lock ids are dropped, not misfiled *)
  C.record_wait c ~tid:0 ~lock:(-1) ~write:false ~ns:999;
  check Alcotest.int "lock -1 ignored"
    (100 + 200 + 300 + 400 + 500 + 600 + 1000)
    (C.total_weight_ns c)

(* Adversarial interleaving: a churn of fresh tail keys between every
   heavy-hitter touch forces constant eviction.  The Space-Saving
   guarantees must survive: heavy hitters (true weight > total/K) stay
   resident, estimates never underestimate, the overestimate is within
   the entry's err, and err stays within total/K. *)
let test_sketch_adversarial () =
  let k = 4 in
  let c = C.create ~k "sketch-adv" in
  let true_w = Hashtbl.create 64 in
  let feed lock ns =
    Hashtbl.replace true_w lock
      (ns + Option.value ~default:0 (Hashtbl.find_opt true_w lock));
    C.record_wait c ~tid:0 ~lock ~write:false ~ns
  in
  for round = 0 to 49 do
    feed 0 1000;
    feed 1 800;
    for j = 0 to 5 do
      feed (100 + (round * 6) + j) 10
    done
  done;
  let true_total = Hashtbl.fold (fun _ v a -> v + a) true_w 0 in
  let total = C.total_weight_ns c in
  check Alcotest.int "total weight is exact despite evictions" true_total
    total;
  let hots = C.top c in
  if List.length hots > k then
    Alcotest.failf "sketch holds %d > K=%d entries" (List.length hots) k;
  List.iter
    (fun lock ->
      match List.find_opt (fun h -> h.C.lock = lock) hots with
      | None -> Alcotest.failf "heavy hitter %d evicted" lock
      | Some h ->
          let tw = Hashtbl.find true_w lock in
          if h.C.weight_ns < tw then
            Alcotest.failf "lock %d: estimate %d underestimates true %d" lock
              h.C.weight_ns tw;
          if h.C.weight_ns - tw > h.C.err_ns then
            Alcotest.failf "lock %d: overestimate %d exceeds err %d" lock
              (h.C.weight_ns - tw) h.C.err_ns)
    [ 0; 1 ];
  (match List.map (fun h -> h.C.lock) hots with
  | 0 :: 1 :: _ | 1 :: 0 :: _ ->
      (* defensive: 0 outweighs 1, so really 0 then 1 *)
      check Alcotest.int "heaviest first" 0 (List.hd hots).C.lock
  | order ->
      Alcotest.failf "heavy hitters not ranked first: %s"
        (String.concat "," (List.map string_of_int order)));
  List.iter
    (fun h ->
      if h.C.err_ns > total / k then
        Alcotest.failf "lock %d: err %d > total/K = %d" h.C.lock h.C.err_ns
          (total / k))
    hots

(* Per-thread sketches merge by summing weights, errs and splits. *)
let test_sketch_merge () =
  let c = C.create ~k:4 "sketch-merge" in
  C.record_wait c ~tid:0 ~lock:7 ~write:false ~ns:100;
  C.record_wait c ~tid:1 ~lock:7 ~write:true ~ns:200;
  C.record_wait c ~tid:2 ~lock:7 ~write:false ~ns:300;
  C.record_wait c ~tid:1 ~lock:9 ~write:false ~ns:50;
  (match C.top c with
  | [ h7; h9 ] ->
      check Alcotest.int "merged heaviest" 7 h7.C.lock;
      check Alcotest.int "merged weight sums threads" 600 h7.C.weight_ns;
      check Alcotest.int "merged hits" 3 h7.C.hits;
      check Alcotest.int "merged read split" 400 h7.C.read_wait_ns;
      check Alcotest.int "merged write split" 200 h7.C.write_wait_ns;
      check Alcotest.int "second key" 9 h9.C.lock;
      check Alcotest.int "second weight" 50 h9.C.weight_ns
  | hots -> Alcotest.failf "expected 2 merged keys, got %d" (List.length hots));
  check Alcotest.int "total_wait sums threads" 650 (C.total_wait_ns c);
  C.reset c;
  check Alcotest.int "reset clears totals" 0 (C.total_weight_ns c);
  check Alcotest.bool "reset clears sketches" true (C.top c = [])

(* ---- Conflict cartography: provenance matrix ---- *)

let test_matrix_unit () =
  let c = C.create "matrix-unit" in
  C.edge c ~victim:1 ~aborter:2 ~lock:5 ~wasted_ns:100
    Obs.Events.Write_lock_conflict;
  C.edge c ~victim:1 ~aborter:2 ~lock:5 ~wasted_ns:100
    Obs.Events.Write_lock_conflict;
  C.edge c ~victim:2 ~aborter:1 ~lock:5 ~wasted_ns:50
    Obs.Events.Read_lock_conflict;
  (* unknown aborter and unattributed lock: matrix-only edge *)
  C.edge c ~victim:3 ~aborter:(-1) ~lock:(-1) ~wasted_ns:10
    Obs.Events.Read_validation;
  check Alcotest.int "victim 1 row" 2 (C.row_total c ~victim:1);
  check Alcotest.int "victim 2 row" 1 (C.row_total c ~victim:2);
  check Alcotest.int "victim 3 row" 1 (C.row_total c ~victim:3);
  check Alcotest.int "edges total" 4 (C.edges_total c);
  let m = C.matrix c in
  check Alcotest.int "cell (1,2)" 2 m.(1).(2);
  check Alcotest.int "cell (2,1)" 1 m.(2).(1);
  check Alcotest.int "unknown column" 1 m.(3).(Array.length m.(3) - 1);
  check counts "edges by reason keep taxonomy order"
    (List.map
       (fun r ->
         ( Obs.Events.abort_reason_label r,
           match r with
           | Obs.Events.Write_lock_conflict -> 2
           | Obs.Events.Read_lock_conflict | Obs.Events.Read_validation -> 1
           | _ -> 0 ))
       Obs.Events.all_abort_reasons)
    (C.edges_by_reason c);
  (* known-aborter asymmetry: |2 - 1| / 3 *)
  let asym = C.asymmetry c in
  if Float.abs (asym -. (1. /. 3.)) > 1e-9 then
    Alcotest.failf "asymmetry %.4f, expected 1/3" asym;
  (* the lock sketch absorbed the pinned aborts *)
  (match C.top c with
  | [ h ] ->
      check Alcotest.int "pinned lock" 5 h.C.lock;
      check Alcotest.int "pinned aborts" 3 h.C.aborts;
      check Alcotest.int "wasted ns charged" 250 h.C.weight_ns
  | hots -> Alcotest.failf "expected 1 pinned lock, got %d" (List.length hots))

(* End-to-end provenance invariant (the ISSUE acceptance criterion):
   after a contended 2PLSF run with the cartography on, each victim's
   matrix row total equals that thread's abort count in the scope's
   taxonomy — edges are recorded exactly where aborts are counted. *)
let test_matrix_matches_taxonomy () =
  Obs.Telemetry.enable ();
  C.enable ();
  Fun.protect ~finally:C.disable (fun () ->
      S.reset_stats ();
      let sc =
        match Obs.Scope.find "2PLSF" with
        | Some sc -> sc
        | None -> Alcotest.fail "no 2PLSF scope"
      in
      let c = Obs.Scope.conflict sc in
      C.reset c;
      ignore (contended_run ());
      check Alcotest.int "edges total equals scope aborts"
        (Obs.Scope.aborts_total sc) (C.edges_total c);
      for tid = 0 to Util.Tid.max_threads - 1 do
        let row = C.row_total c ~victim:tid in
        let ab = Obs.Scope.aborts_of_tid sc ~tid in
        if row <> ab then
          Alcotest.failf "tid %d: %d provenance edges, %d taxonomy aborts"
            tid row ab
      done;
      if S.aborts () > 0 then begin
        if C.top c = [] then
          Alcotest.fail "aborts occurred but no lock was attributed";
        if C.total_weight_ns c <= 0 then
          Alcotest.fail "aborts occurred but no weight attributed"
      end)

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "overflow bucket" `Quick test_bucket_overflow;
          Alcotest.test_case "lower-bound roundtrip" `Quick
            test_bucket_lower_bound_roundtrip;
          Alcotest.test_case "record + percentile" `Quick
            test_histogram_record_percentile;
          Alcotest.test_case "percentile edge cases" `Quick
            test_percentile_edges;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "diff/add arithmetic" `Quick test_snapshot_arith ]
      );
      ("padded", [ Alcotest.test_case "counters" `Quick test_padded_counters ]);
      ( "taxonomy",
        [
          Alcotest.test_case "reasons sum to aborts" `Quick
            test_abort_reasons_sum;
        ] );
      ( "phases",
        [
          Alcotest.test_case "deterministic lifecycle" `Quick
            test_phase_accounting_unit;
          Alcotest.test_case "contended partition tiles wall-clock" `Quick
            test_phase_partition_contended;
        ] );
      ( "gauges",
        [ Alcotest.test_case "named providers" `Quick test_gauge_providers ] );
      ( "exporter",
        [
          Alcotest.test_case "OpenMetrics render" `Quick test_exporter_render;
          Alcotest.test_case "HTTP scrape" `Quick test_exporter_http;
          Alcotest.test_case "extra providers" `Quick test_exporter_extras;
          Alcotest.test_case "failed bind leaks nothing" `Quick
            test_exporter_bind_failure_no_leak;
        ] );
      ( "trace",
        [ Alcotest.test_case "chrome JSON export" `Quick test_trace_export ] );
      ( "conflict-sketch",
        [
          Alcotest.test_case "exact below K" `Quick test_sketch_exact_under_k;
          Alcotest.test_case "adversarial heavy hitters" `Quick
            test_sketch_adversarial;
          Alcotest.test_case "per-thread merge" `Quick test_sketch_merge;
        ] );
      ( "conflict-matrix",
        [
          Alcotest.test_case "unit accounting" `Quick test_matrix_unit;
          Alcotest.test_case "rows match abort taxonomy" `Quick
            test_matrix_matches_taxonomy;
        ] );
    ]
