(* Tests for the BENCH_*.json pipeline: the hand-rolled JSON round-trip,
   the artifact writer's schema, and the benchdiff comparator's breach
   logic (throughput drops and latency rises past the threshold fail;
   improvements and sub-threshold noise do not). *)

module J = Harness.Json
module B = Harness.Benchdiff
module A = Harness.Bench_artifact

let check = Alcotest.check

(* ---- JSON round-trip ---- *)

let rec json_eq a b =
  match (a, b) with
  | J.Null, J.Null -> true
  | J.Bool x, J.Bool y -> x = y
  | J.Num x, J.Num y -> Float.abs (x -. y) <= 1e-9 *. Float.max 1. (Float.abs x)
  | J.Str x, J.Str y -> x = y
  | J.Arr x, J.Arr y ->
      List.length x = List.length y && List.for_all2 json_eq x y
  | J.Obj x, J.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && json_eq v1 v2)
           x y
  | _ -> false

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("s", J.Str "a \"quoted\"\nstring");
        ("i", J.Num 42.);
        ("f", J.Num 3.125);
        ("neg", J.Num (-7.));
        ("b", J.Bool true);
        ("n", J.Null);
        ("a", J.Arr [ J.Num 1.; J.Str "x"; J.Obj []; J.Arr [] ]);
      ]
  in
  let s = J.to_string doc in
  if not (json_eq doc (J.parse s)) then
    Alcotest.failf "round-trip mismatch: %s" s;
  (* integral floats print without a fractional part *)
  if not (String.length s > 0 && J.to_string (J.Num 42.) = "42") then
    Alcotest.failf "integral float printed as %s" (J.to_string (J.Num 42.));
  match J.parse "{\"x\": [1, 2,]}" with
  | exception J.Parse_error _ -> ()
  | _ -> Alcotest.fail "accepted trailing comma"

(* ---- comparator ---- *)

let row ?(figure = "Figure 3") ?(stm = "2PLSF") ?(structure = "linked-list")
    ?(mix = "100l") ?(threads = 2) ~throughput ?p99_ns () =
  J.Obj
    ([
       ("figure", J.Str figure);
       ("stm", J.Str stm);
       ("structure", J.Str structure);
       ("mix", J.Str mix);
       ("threads", J.Num (float_of_int threads));
       ("throughput", J.Num throughput);
     ]
    @ match p99_ns with None -> [] | Some p -> [ ("p99_ns", J.Num p) ])

let doc ?(schema = A.schema_version) rows =
  J.Obj
    [
      ("schema_version", J.Num (float_of_int schema));
      ("rows", J.Arr rows);
      ("latency_rows", J.Arr []);
      ("overload", J.Arr []);
    ]

let breaches ?(threshold = 10.) old_rows new_rows =
  (B.compare_docs ~threshold_pct:threshold (doc old_rows) (doc new_rows))
    .B.breaches

let test_identical_passes () =
  let rows = [ row ~throughput:1000. ~p99_ns:5000. () ] in
  check Alcotest.int "identical artifacts breach nothing" 0
    (breaches rows rows)

let test_throughput_regression_fails () =
  let old_rows = [ row ~throughput:1000. () ] in
  (* the ISSUE acceptance case: 20% throughput drop must exit non-zero *)
  check Alcotest.int "20%% drop breaches" 1
    (breaches old_rows [ row ~throughput:800. () ]);
  check Alcotest.int "5%% drop is under the default threshold" 0
    (breaches old_rows [ row ~throughput:950. () ]);
  check Alcotest.int "improvement never breaches" 0
    (breaches old_rows [ row ~throughput:2000. () ]);
  check Alcotest.int "30%% threshold tolerates a 20%% drop" 0
    (breaches ~threshold:30. old_rows [ row ~throughput:800. () ])

let test_latency_regression_fails () =
  let old_rows = [ row ~throughput:1000. ~p99_ns:1000. () ] in
  check Alcotest.int "p99 rise breaches" 1
    (breaches old_rows [ row ~throughput:1000. ~p99_ns:1500. () ]);
  check Alcotest.int "p99 fall is an improvement" 0
    (breaches old_rows [ row ~throughput:1000. ~p99_ns:500. () ])

let test_row_identity () =
  let old_rows = [ row ~throughput:1000. () ] in
  (* a different thread count is a different row: no comparison, the old
     row lands in [missing] *)
  let r =
    B.compare_docs ~threshold_pct:10. (doc old_rows)
      (doc [ row ~threads:4 ~throughput:10. () ])
  in
  check Alcotest.int "no cross-row comparison" 0 r.B.breaches;
  check Alcotest.int "old row reported missing" 1 (List.length r.B.missing);
  check Alcotest.int "new row reported added" 1 (List.length r.B.added)

let test_schema_mismatch_refused () =
  let rows = [ row ~throughput:1. () ] in
  (match
     B.compare_docs ~threshold_pct:10. (doc ~schema:999 rows) (doc rows)
   with
  | exception B.Incompatible _ -> ()
  | _ -> Alcotest.fail "accepted unknown schema_version");
  match B.compare_docs ~threshold_pct:10. (J.Obj []) (doc rows) with
  | exception B.Incompatible _ -> ()
  | _ -> Alcotest.fail "accepted a non-artifact document"

(* v1 baselines must stay comparable after the v2 (conflicts) bump:
   shared metrics are gated as before, the version skew and the one-sided
   conflict section only produce warnings. *)
let conflict_scope ?(top_share = 0.5) ?(asymmetry = 0.2) name =
  J.Obj
    [
      ("scope", J.Str name);
      ("total_attributed_ns", J.Num 1e6);
      ("edges_total", J.Num 10.);
      ("top_lock", J.Num 3.);
      ("top_lock_share", J.Num top_share);
      ("asymmetry", J.Num asymmetry);
    ]

let doc_v2 ?(conflicts = []) rows =
  J.Obj
    [
      ("schema_version", J.Num 2.);
      ("rows", J.Arr rows);
      ("latency_rows", J.Arr []);
      ("overload", J.Arr []);
      ("conflicts", J.Arr conflicts);
    ]

let test_cross_schema_warns () =
  let old_doc = doc ~schema:1 [ row ~throughput:1000. () ] in
  let new_doc =
    doc_v2
      ~conflicts:[ conflict_scope "2PLSF" ]
      [ row ~throughput:800. () ]
  in
  let r = B.compare_docs ~threshold_pct:10. old_doc new_doc in
  check Alcotest.int "shared metrics still gate across versions" 1 r.B.breaches;
  if r.B.warnings = [] then Alcotest.fail "no warning for v1-vs-v2 compare";
  check Alcotest.int "one-sided conflicts skipped, both skews warned" 2
    (List.length r.B.warnings);
  check Alcotest.int "no phantom missing rows" 0 (List.length r.B.missing);
  (* same-version compare of identical docs stays warning-free *)
  let clean = B.compare_docs ~threshold_pct:10. old_doc old_doc in
  check (Alcotest.list Alcotest.string) "no warnings same-version" []
    clean.B.warnings

let test_conflict_deltas_never_gate () =
  let rows = [ row ~throughput:1000. () ] in
  let old_doc = doc_v2 ~conflicts:[ conflict_scope ~top_share:0.2 "2PLSF" ] rows in
  let new_doc = doc_v2 ~conflicts:[ conflict_scope ~top_share:0.9 "2PLSF" ] rows in
  let r = B.compare_docs ~threshold_pct:10. old_doc new_doc in
  let conflict_entries =
    List.filter (fun e -> e.B.key = "conflicts/2PLSF") r.B.entries
  in
  check Alcotest.int "conflict metrics compared" 2
    (List.length conflict_entries);
  check Alcotest.int "a 4.5x hotspot concentration jump never breaches" 0
    r.B.breaches

(* v3: the wal durability counters are warn-only, exactly like the
   conflict cartography — kill timing makes them vary run to run. *)
let wal_section ?(replayed = 100.) () =
  J.Obj
    [
      ("crash_cycles", J.Num 50.);
      ("killed", J.Num 48.);
      ("clean", J.Num 2.);
      ("torn_tails", J.Num 1.);
      ("records_seen", J.Num 1000.);
      ("records_replayed", J.Num replayed);
      ("violations", J.Num 0.);
    ]

let doc_v3 ?wal rows =
  J.Obj
    ([
       ("schema_version", J.Num 3.);
       ("rows", J.Arr rows);
       ("latency_rows", J.Arr []);
       ("overload", J.Arr []);
       ("conflicts", J.Arr []);
     ]
    @ match wal with None -> [] | Some w -> [ ("wal", w) ])

let test_wal_deltas_never_gate () =
  let rows = [ row ~throughput:1000. () ] in
  let old_doc = doc_v3 ~wal:(wal_section ~replayed:1000. ()) rows in
  let new_doc = doc_v3 ~wal:(wal_section ~replayed:10. ()) rows in
  let r = B.compare_docs ~threshold_pct:10. old_doc new_doc in
  let wal_entries = List.filter (fun e -> e.B.key = "wal") r.B.entries in
  check Alcotest.int "wal metrics compared" 6 (List.length wal_entries);
  check Alcotest.int "a 100x replay-volume drop never breaches" 0 r.B.breaches;
  check (Alcotest.list Alcotest.string) "no warnings when both sides have wal"
    [] r.B.warnings

let test_wal_one_sided_warns () =
  let rows = [ row ~throughput:1000. () ] in
  (* a v2 baseline against a v3 artifact with a wal section: schema skew
     and the one-sided section each warn, nothing gates *)
  let r =
    B.compare_docs ~threshold_pct:10. (doc_v2 rows)
      (doc_v3 ~wal:(wal_section ()) rows)
  in
  check Alcotest.int "no breach" 0 r.B.breaches;
  check Alcotest.int "schema skew + one-sided wal warned" 2
    (List.length r.B.warnings);
  check Alcotest.int "wal family skipped" 0
    (List.length (List.filter (fun e -> e.B.key = "wal") r.B.entries))

(* ---- end-to-end through the artifact writer ---- *)

let test_artifact_write_and_selfdiff () =
  A.reset ();
  let telemetry =
    {
      Harness.Driver.phases =
        List.map
          (fun ph ->
            ( Twoplsf_obs.Phase.label ph,
              match ph with
              | Twoplsf_obs.Phase.Body -> 700
              | Twoplsf_obs.Phase.Commit -> 300
              | Twoplsf_obs.Phase.Wasted_retry -> 50
              | _ -> 0 ))
          Twoplsf_obs.Phase.all;
      txn_total_ns = 1000;
      p50_ns = 127;
      p99_ns = 511;
      p999_ns = 1023;
    }
  in
  A.record_row ~figure:"Figure T"
    {
      Harness.Driver.stm = "2PLSF";
      structure = "hash";
      mix = "50u";
      threads = 2;
      throughput = 12345.;
      commits = 100;
      aborts = 7;
      clock_ops = 3;
      abort_reasons = [ ("write-lock-conflict", 7) ];
      telemetry;
    };
  A.record_overload ~stm:"2PLSF" ~ops:500 ~starved:0 ~deadline_raises:1
    ~fallbacks:2 ~leaked:0 ~sum_ok:true ~p50_ms:0.5 ~p99_ms:2.0 ~p999_ms:8.0;
  A.record_wal [ ("crash_cycles", 5); ("killed", 4); ("records_replayed", 77) ];
  let path = Filename.temp_file "bench_artifact" ".json" in
  A.write ~path ~flags:"--quick --telemetry";
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let d = J.parse_file path in
      check (Alcotest.option Alcotest.int) "schema" (Some A.schema_version)
        (J.int_field d "schema_version");
      check (Alcotest.option Alcotest.string) "flags"
        (Some "--quick --telemetry") (J.str_field d "flags");
      let r =
        match J.arr_field d "rows" with
        | Some [ r ] -> r
        | _ -> Alcotest.fail "expected exactly one row"
      in
      (match J.num_field r "phase_coverage" with
      | Some cov when Float.abs (cov -. 1.0) <= 0.05 -> ()
      | Some cov -> Alcotest.failf "phase_coverage %.3f out of tolerance" cov
      | None -> Alcotest.fail "missing phase_coverage");
      (match J.num_field r "wasted_retry_frac" with
      | Some f when Float.abs (f -. 0.05) <= 1e-9 -> ()
      | Some f -> Alcotest.failf "wasted_retry_frac %.4f, expected 0.05" f
      | None -> Alcotest.fail "missing wasted_retry_frac");
      (match J.mem d "wal" with
      | Some w ->
          check (Alcotest.option Alcotest.int) "wal crash_cycles" (Some 5)
            (J.int_field w "crash_cycles")
      | None -> Alcotest.fail "missing wal section");
      let self = B.compare_docs ~threshold_pct:10. d d in
      check Alcotest.int "self-diff has no breaches" 0 self.B.breaches;
      if self.B.entries = [] then Alcotest.fail "self-diff compared nothing";
      if not (List.exists (fun e -> e.B.key = "wal") self.B.entries) then
        Alcotest.fail "self-diff skipped the wal family";
      A.reset ())

let () =
  Alcotest.run "benchdiff"
    [
      ("json", [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ]);
      ( "comparator",
        [
          Alcotest.test_case "identical passes" `Quick test_identical_passes;
          Alcotest.test_case "throughput regression fails" `Quick
            test_throughput_regression_fails;
          Alcotest.test_case "latency regression fails" `Quick
            test_latency_regression_fails;
          Alcotest.test_case "row identity" `Quick test_row_identity;
          Alcotest.test_case "schema mismatch refused" `Quick
            test_schema_mismatch_refused;
          Alcotest.test_case "cross-schema compare warns" `Quick
            test_cross_schema_warns;
          Alcotest.test_case "conflict deltas never gate" `Quick
            test_conflict_deltas_never_gate;
          Alcotest.test_case "wal deltas never gate" `Quick
            test_wal_deltas_never_gate;
          Alcotest.test_case "one-sided wal section warns" `Quick
            test_wal_one_sided_warns;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "write + self-diff" `Quick
            test_artifact_write_and_selfdiff;
        ] );
    ]
