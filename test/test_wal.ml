(* Tests for the durability layer (DESIGN.md §15): the CRC-32 codec,
   the record format, the SPSC ring, and the WAL end to end through the
   DBx engine — durable acks, replay idempotence, torn-tail truncation,
   corruption refusal, and the fuzzy-checkpoint equivalence property
   (checkpoint + log suffix recovers the same image as the full log)
   over seeded transfer histories. *)

module Wal = Twoplsf_wal.Wal
module Record = Twoplsf_wal.Record
module Ring = Twoplsf_wal.Ring
module Crc32 = Util.Crc32

let check = Alcotest.check
let () = ignore (Util.Tid.register ())

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "twoplsf_wal_test_%d_%d" (Unix.getpid ()) !dir_counter)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---- CRC-32 ---- *)

let test_crc32 () =
  (* the standard zlib check value *)
  check Alcotest.int "123456789" 0xCBF43926 (Crc32.string "123456789");
  check Alcotest.int "empty" 0 (Crc32.string "");
  let data = Bytes.of_string "the quick brown fox jumps over the lazy dog" in
  let whole = Crc32.bytes data in
  let split =
    let c = Crc32.update 0 data ~pos:0 ~len:17 in
    Crc32.update c data ~pos:17 ~len:(Bytes.length data - 17)
  in
  check Alcotest.int "incremental = one-shot" whole split

(* ---- record codec ---- *)

let encode_one ~lsn ~rids ~rows ~row_len =
  let n = Array.length rids in
  let buf = Bytes.create (Record.size ~nwrites:n ~row_len) in
  let wrote =
    Record.encode buf ~pos:0 ~lsn ~table_id:3 ~row_len ~n
      ~rid:(fun i -> rids.(i))
      ~row:(fun i -> rows.(i))
  in
  check Alcotest.int "encode size" (Bytes.length buf) wrote;
  buf

let test_record_roundtrip () =
  let row_len = 16 in
  let rids = [| 7; 42; 7 |] in
  let rows = Array.init 3 (fun i -> Bytes.make row_len (Char.chr (65 + i))) in
  let buf = encode_one ~lsn:99 ~rids ~rows ~row_len in
  match Record.decode buf ~pos:0 ~avail:(Bytes.length buf) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok (r, size) ->
      check Alcotest.int "size" (Bytes.length buf) size;
      check Alcotest.int "lsn" 99 r.Record.r_lsn;
      check Alcotest.int "table" 3 r.Record.r_table_id;
      check Alcotest.int "row_len" row_len r.Record.r_row_len;
      check Alcotest.int "writes" 3 (Array.length r.Record.r_writes);
      Array.iteri
        (fun i (rid, img) ->
          check Alcotest.int "rid" rids.(i) rid;
          check Alcotest.bool "image" true (Bytes.equal img rows.(i)))
        r.Record.r_writes

let test_record_rejects_damage () =
  let row_len = 8 in
  let buf =
    encode_one ~lsn:5 ~rids:[| 1 |]
      ~rows:[| Bytes.make row_len 'x' |]
      ~row_len
  in
  (* truncated: every prefix shorter than the record must fail cleanly *)
  for avail = 0 to Bytes.length buf - 1 do
    match Record.decode buf ~pos:0 ~avail with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted truncated record (avail=%d)" avail
  done;
  (* any single flipped bit must break the CRC (or the structure) *)
  for byte = 0 to Bytes.length buf - 1 do
    let copy = Bytes.copy buf in
    Bytes.set copy byte (Char.chr (Char.code (Bytes.get copy byte) lxor 0x10));
    match Record.decode copy ~pos:0 ~avail:(Bytes.length copy) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bit flip at byte %d" byte
  done;
  (* find_valid sees through garbage to a later valid record *)
  let tail =
    encode_one ~lsn:6 ~rids:[| 2 |] ~rows:[| Bytes.make row_len 'y' |] ~row_len
  in
  let glued = Bytes.concat Bytes.empty [ Bytes.make 13 '\xff'; tail ] in
  (match
     Record.find_valid glued ~pos:0 ~len:(Bytes.length glued) ~after_lsn:5
   with
  | Some 13 -> ()
  | Some o -> Alcotest.failf "find_valid at %d, expected 13" o
  | None -> Alcotest.fail "find_valid missed the valid record");
  (* ... but not to one at or below the LSN high-water mark *)
  match
    Record.find_valid glued ~pos:0 ~len:(Bytes.length glued) ~after_lsn:6
  with
  | None -> ()
  | Some _ -> Alcotest.fail "find_valid accepted a stale LSN"

(* ---- SPSC ring ---- *)

let test_ring () =
  let r = Ring.create ~capacity:5 in
  check Alcotest.int "capacity rounded to 2^k" 8 (Ring.capacity r);
  check Alcotest.bool "fresh ring empty" true (Ring.is_empty r);
  check Alcotest.int "peek on empty" (-1) (Ring.peek_lsn r);
  for i = 1 to 8 do
    Ring.push r ~lsn:i (Bytes.make 4 (Char.chr i))
  done;
  check Alcotest.int "peek sees head" 1 (Ring.peek_lsn r);
  for i = 1 to 8 do
    match Ring.pop r with
    | Some (lsn, b) ->
        check Alcotest.int "fifo lsn" i lsn;
        check Alcotest.int "payload" i (Char.code (Bytes.get b 0))
    | None -> Alcotest.fail "pop on non-empty"
  done;
  check Alcotest.bool "drained" true (Ring.is_empty r)

(* ---- WAL end to end through the DBx engine ---- *)

let rows = 32
let init_balance = 1_000

let make_table () =
  let tbl = Dbx.Table.create ~num_rows:rows in
  for rid = 0 to rows - 1 do
    Dbx.Table.set_balance tbl rid init_balance
  done;
  tbl

(* Run [n] seeded transfers on a fresh table with a WAL attached; the
   returned table is the live post-history state. *)
let run_history ~dir ~seed ~n ~cfg =
  let tbl = make_table () in
  let store = Dbx.Cc_2plsf.wal_store tbl in
  let w = Wal.create (cfg dir) store in
  let cc = Dbx.Cc_2plsf.create tbl in
  Dbx.Cc_2plsf.set_wal cc (Some w);
  let tid = Util.Tid.get () in
  let rng = Util.Sprng.create seed in
  for _ = 1 to n do
    let a = Util.Sprng.int rng rows and b = Util.Sprng.int rng rows in
    let amt = 1 + Util.Sprng.int rng 16 in
    ignore (Dbx.Cc_2plsf.execute_transfer cc ~tid ~src:a ~dst:b ~amount:amt)
  done;
  Dbx.Cc_2plsf.set_wal cc None;
  Wal.stop w;
  tbl

let recover_into_fresh ~dir =
  let tbl = make_table () in
  let r = Wal.recover ~dir (Dbx.Cc_2plsf.wal_store tbl) in
  (tbl, r)

let tables_equal a b =
  let ok = ref true in
  for rid = 0 to rows - 1 do
    if not (Bytes.equal (Dbx.Table.payload a rid) (Dbx.Table.payload b rid))
    then ok := false
  done;
  !ok

let balance_sum t =
  let s = ref 0 in
  for rid = 0 to rows - 1 do
    s := !s + Dbx.Table.balance t rid
  done;
  !s

let quick_cfg ?(ckpt = 0) dir =
  Wal.config ~sync:Wal.Sync_none ~ckpt_every_bytes:ckpt ~dir ()

let test_recover_matches_live () =
  with_dir @@ fun dir ->
  let live = run_history ~dir ~seed:11 ~n:300 ~cfg:quick_cfg in
  let rec1, r = recover_into_fresh ~dir in
  check Alcotest.bool "recovered = live" true (tables_equal live rec1);
  check Alcotest.int "conservation" (rows * init_balance) (balance_sum rec1);
  check Alcotest.bool "no torn tail on clean shutdown" false r.Wal.r_torn_tail;
  check Alcotest.int "all records replayable" 300 r.Wal.r_records;
  (* replay twice == replay once *)
  let rec2, _ = recover_into_fresh ~dir in
  check Alcotest.bool "idempotent" true (tables_equal rec1 rec2)

let test_durable_ack_and_metrics () =
  with_dir @@ fun dir ->
  let tbl = make_table () in
  let store = Dbx.Cc_2plsf.wal_store tbl in
  (* real fsyncs on this one: the ack must mean flushed *)
  let w = Wal.create (Wal.config ~dir ()) store in
  Dbx.Table.set_balance tbl 0 init_balance;
  Wal.mark_dirty w ~rid:0;
  let lsn = Wal.log_commit w ~tid:(Util.Tid.get ()) ~n:1 ~rid:(fun _ -> 0) in
  Wal.wait_durable w ~lsn;
  if Wal.flushed_lsn w < lsn then Alcotest.fail "ack before flush";
  let m = Wal.metrics w in
  let get k = List.assoc k m in
  check Alcotest.int "one record" 1 (get "records");
  if get "fsyncs" < 1 then Alcotest.fail "no fsync behind a durable ack";
  Wal.stop w

let test_torn_tail_truncated () =
  with_dir @@ fun dir ->
  let live = run_history ~dir ~seed:22 ~n:200 ~cfg:quick_cfg in
  ignore live;
  let seg =
    match List.rev (Wal.segments ~dir ()) with
    | (_, path) :: _ -> path
    | [] -> Alcotest.fail "no segments"
  in
  (* cut the last record in half: the classic crash-mid-append state *)
  let size = (Unix.stat seg).Unix.st_size in
  let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
  Unix.ftruncate fd (size - 30);
  Unix.close fd;
  let rec1, r = recover_into_fresh ~dir in
  check Alcotest.bool "torn tail detected" true r.Wal.r_torn_tail;
  check Alcotest.int "torn tail truncated" (199) r.Wal.r_records;
  check Alcotest.int "conservation after truncation" (rows * init_balance)
    (balance_sum rec1);
  (* the truncated log is now clean: recover again, no tear reported *)
  let rec2, r2 = recover_into_fresh ~dir in
  check Alcotest.bool "second recovery clean" false r2.Wal.r_torn_tail;
  check Alcotest.bool "idempotent after truncation" true
    (tables_equal rec1 rec2);
  (* garbage appended after the good prefix is also just a tear *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 seg in
  output_string oc "\x00\x01\x02garbage";
  close_out oc;
  let _, r3 = recover_into_fresh ~dir in
  check Alcotest.bool "appended garbage = torn tail" true r3.Wal.r_torn_tail

let flip_bit_at seg off =
  let fd = Unix.openfile seg [ Unix.O_RDWR ] 0 in
  let b = Bytes.create 1 in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x04));
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd

let test_interior_corruption_refused () =
  with_dir @@ fun dir ->
  ignore (run_history ~dir ~seed:33 ~n:200 ~cfg:quick_cfg);
  let seg =
    match Wal.segments ~dir () with
    | (_, path) :: _ -> path
    | [] -> Alcotest.fail "no segments"
  in
  (* flip a bit in an early record: valid records follow, so under the
     process-kill crash model (strict — the page cache survives _exit)
     this is corruption, not a tear — recovery must refuse, not
     silently drop the suffix *)
  flip_bit_at seg 40;
  let tbl = make_table () in
  match Wal.recover ~strict:true ~dir (Dbx.Cc_2plsf.wal_store tbl) with
  | exception Wal.Corrupt _ -> ()
  | _ -> Alcotest.fail "strict recovery accepted interior corruption"

let test_suspect_tail_truncated_lenient () =
  with_dir @@ fun dir ->
  ignore (run_history ~dir ~seed:34 ~n:200 ~cfg:quick_cfg);
  let seg =
    match List.rev (Wal.segments ~dir ()) with
    | (_, path) :: _ -> path
    | [] -> Alcotest.fail "no segments"
  in
  (* same damage, lenient (default) model: on a real power loss the
     final segment's sectors can land out of order, so a valid record
     after damaged bytes is a legal crash state — recovery truncates at
     the damage and counts the discarded suffix as suspect *)
  flip_bit_at seg 40;
  let rec1, r = recover_into_fresh ~dir in
  if r.Wal.r_suspect_records = 0 then
    Alcotest.fail "lenient recovery counted no suspect records";
  check Alcotest.bool "tail truncated" true (r.Wal.r_truncated_bytes > 0);
  check Alcotest.int "conservation on the surviving prefix"
    (rows * init_balance) (balance_sum rec1);
  (* the truncated log is now clean and stable *)
  let rec2, r2 = recover_into_fresh ~dir in
  check Alcotest.int "second recovery clean" 0 r2.Wal.r_suspect_records;
  check Alcotest.bool "idempotent after truncation" true
    (tables_equal rec1 rec2)

(* checkpoint + log suffix == full log: the same seeded history run
   with aggressive checkpointing and with none must recover to the same
   image (and the checkpointed side must actually have checkpointed). *)
let test_checkpoint_equivalence () =
  List.iter
    (fun seed ->
      with_dir @@ fun dir_a ->
      with_dir @@ fun dir_b ->
      let live_a =
        run_history ~dir:dir_a ~seed ~n:400 ~cfg:(quick_cfg ~ckpt:4096)
      in
      let live_b =
        run_history ~dir:dir_b ~seed ~n:400 ~cfg:quick_cfg
      in
      check Alcotest.bool "same history, same live state" true
        (tables_equal live_a live_b);
      (match Wal.read_image_info ~dir:dir_a () with
      | Some i -> check Alcotest.int "image covers the table" rows i.Wal.i_num_rows
      | None -> Alcotest.fail "aggressive checkpointing produced no image");
      let rec_a, ra = recover_into_fresh ~dir:dir_a in
      let rec_b, rb = recover_into_fresh ~dir:dir_b in
      if ra.Wal.r_image_lsn = 0 then
        Alcotest.fail "checkpointed recovery ignored the image";
      check Alcotest.bool "full-log side saw every record" true
        (rb.Wal.r_records = 400);
      check Alcotest.bool "checkpointed side replays a suffix" true
        (ra.Wal.r_records < 400);
      check Alcotest.bool "checkpoint+suffix = full log" true
        (tables_equal rec_a rec_b);
      check Alcotest.bool "both match the live image" true
        (tables_equal rec_a live_a))
    [ 1; 2; 3; 4; 5 ]

(* explicit checkpoint barrier + the mark_undo parity path: a rollback
   must close the seqlock window so the next checkpoint's copier does
   not spin forever on an odd mark *)
let test_manual_checkpoint_and_undo_marks () =
  with_dir @@ fun dir ->
  let tbl = make_table () in
  let store = Dbx.Cc_2plsf.wal_store tbl in
  let w = Wal.create (quick_cfg dir) store in
  Wal.mark_dirty w ~rid:3;
  Wal.mark_undo w ~rid:3;
  (* duplicate undo is idempotent (parity guard) *)
  Wal.mark_undo w ~rid:3;
  Wal.checkpoint w;
  let m = Wal.metrics w in
  check Alcotest.int "checkpoint completed" 1 (List.assoc "checkpoints" m);
  Wal.stop w;
  match Wal.read_image_info ~dir () with
  | Some i ->
      check Alcotest.int "image rows" rows i.Wal.i_num_rows;
      check Alcotest.int "image row_len" Dbx.Table.tuple_size i.Wal.i_row_len
  | None -> Alcotest.fail "manual checkpoint wrote no image"

(* multi-domain: concurrent committers through the rings and the
   LSN-merge writer, then recovery of the merged log *)
let test_concurrent_commits_recover () =
  with_dir @@ fun dir ->
  let tbl = make_table () in
  let store = Dbx.Cc_2plsf.wal_store tbl in
  let w = Wal.create (quick_cfg ~ckpt:8192 dir) store in
  let cc = Dbx.Cc_2plsf.create tbl in
  Dbx.Cc_2plsf.set_wal cc (Some w);
  let per_worker = 400 in
  ignore
    (Harness.Exec.run_each ~threads:4 (fun i ->
         let rng = Util.Sprng.create (100 + i) in
         let tid = Util.Tid.get () in
         for _ = 1 to per_worker do
           let a = Util.Sprng.int rng rows and b = Util.Sprng.int rng rows in
           ignore
             (Dbx.Cc_2plsf.execute_transfer cc ~tid ~src:a ~dst:b ~amount:1)
         done));
  Dbx.Cc_2plsf.set_wal cc None;
  Wal.stop w;
  let rec1, r = recover_into_fresh ~dir in
  (* every commit drew a distinct LSN and the drain flushed them all *)
  check Alcotest.int "lsn watermark = total commits" (4 * per_worker)
    r.Wal.r_max_lsn;
  check Alcotest.bool "concurrent recovery matches live" true
    (tables_equal rec1 tbl);
  check Alcotest.int "conservation under concurrency" (rows * init_balance)
    (balance_sum rec1)

(* ---- WAL metric families on the exporter ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_wal_metric_families () =
  with_dir @@ fun dir ->
  let tbl = make_table () in
  let w = Wal.create (quick_cfg dir) (Dbx.Cc_2plsf.wal_store tbl) in
  Dbx.Wal_obs.register w;
  Fun.protect
    ~finally:(fun () ->
      Dbx.Wal_obs.unregister ();
      Wal.stop w)
    (fun () ->
      let body = Twoplsf_obs.Exporter.render () in
      List.iter
        (fun needle ->
          if not (contains body needle) then
            Alcotest.failf "render missing %S" needle)
        [
          "# TYPE twoplsf_wal_records counter";
          "# TYPE twoplsf_wal_fsyncs counter";
          "# TYPE twoplsf_wal_flushed_lsn gauge";
          "twoplsf_wal_checkpoints 0";
        ];
      Dbx.Wal_obs.unregister ();
      let body' = Twoplsf_obs.Exporter.render () in
      if contains body' "twoplsf_wal_records" then
        Alcotest.fail "unregister left the provider installed")

let () =
  Alcotest.run "wal"
    [
      ( "codec",
        [
          Alcotest.test_case "crc32 vectors" `Quick test_crc32;
          Alcotest.test_case "record round-trip" `Quick test_record_roundtrip;
          Alcotest.test_case "record rejects damage" `Quick
            test_record_rejects_damage;
          Alcotest.test_case "spsc ring" `Quick test_ring;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "recover matches live" `Quick
            test_recover_matches_live;
          Alcotest.test_case "durable ack implies fsync" `Quick
            test_durable_ack_and_metrics;
          Alcotest.test_case "torn tail truncated" `Quick
            test_torn_tail_truncated;
          Alcotest.test_case "interior corruption refused (strict)" `Quick
            test_interior_corruption_refused;
          Alcotest.test_case "suspect tail truncated (lenient)" `Quick
            test_suspect_tail_truncated_lenient;
          Alcotest.test_case "checkpoint+suffix = full log" `Quick
            test_checkpoint_equivalence;
          Alcotest.test_case "manual checkpoint, undo marks" `Quick
            test_manual_checkpoint_and_undo_marks;
          Alcotest.test_case "concurrent commits recover" `Quick
            test_concurrent_commits_recover;
        ] );
      ( "observability",
        [
          Alcotest.test_case "exporter families" `Quick
            test_wal_metric_families;
        ] );
    ]
